// Shared helpers for the experiment harnesses.
//
// Every binary prints the paper artifact it regenerates (paper value vs
// measured value). Defaults finish in seconds on one core; setting
// ADVOCAT_FULL=1 in the environment runs paper-scale instances.
//
// All wall-clock timing goes through util::Stopwatch (steady_clock), and
// every harness emits one machine-readable result line per scenario:
//
//   BENCH_JSON {"bench":"E3","capacity":2,"verdict":"deadlock",...}
//
// so result trajectories (BENCH_*.json) can be collected by grepping for
// the BENCH_JSON prefix.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "smt/solver.hpp"
#include "util/stopwatch.hpp"

namespace advocat::bench {

/// Normalized three-way verdict string for output and BENCH_JSON lines:
/// "free" (proven deadlock-free), "deadlock" (candidate found), "unknown"
/// (timeout or degraded search — NOT a deadlock and NOT a harness
/// failure; harnesses exit non-zero only on definite disagreement).
inline const char* verdict_string(smt::SatResult r) {
  switch (r) {
    case smt::SatResult::Unsat: return "free";
    case smt::SatResult::Sat: return "deadlock";
    case smt::SatResult::Unknown: return "unknown";
  }
  return "unknown";
}

/// Wall-clock timer for experiment phases.
using Timer = util::Stopwatch;

inline bool full_scale() { return std::getenv("ADVOCAT_FULL") != nullptr; }

/// CI smoke mode (ADVOCAT_SMOKE=1): cap every harness to its smallest
/// instances so a bench run finishes in seconds and still exercises the
/// incremental paths end to end. Wins over ADVOCAT_FULL.
inline bool smoke() { return std::getenv("ADVOCAT_SMOKE") != nullptr; }

inline void header(const char* id, const char* what) {
  std::printf("=== %s: %s ===\n", id, what);
  if (smoke()) {
    std::printf("(smoke mode: minimal instances for CI regression checks)\n");
  } else if (!full_scale()) {
    std::printf("(reduced instance sizes; set ADVOCAT_FULL=1 for "
                "paper-scale runs)\n");
  }
}

/// One-line JSON result builder. Values are numbers, booleans, or plain
/// strings (no embedded quotes/backslashes — true for everything the
/// harnesses emit).
class JsonLine {
 public:
  explicit JsonLine(const char* bench) {
    body_ = "{\"bench\":\"" + std::string(bench) + "\"";
  }

  JsonLine& field(const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return raw(key, buf);
  }
  JsonLine& field(const char* key, std::size_t v) {
    return raw(key, std::to_string(v));
  }
  JsonLine& field(const char* key, int v) {
    return raw(key, std::to_string(v));
  }
  JsonLine& field(const char* key, bool v) {
    return raw(key, v ? "true" : "false");
  }
  JsonLine& field(const char* key, const char* v) {
    // Built with append rather than operator+ chains: GCC 12's -Wrestrict
    // false-positives on the temporary-string insert path under -O2.
    std::string quoted;
    quoted.reserve(std::char_traits<char>::length(v) + 2);
    quoted += '"';
    quoted += v;
    quoted += '"';
    return raw(key, quoted);
  }
  JsonLine& field(const char* key, const std::string& v) {
    return field(key, v.c_str());
  }

  /// Emits the SolveStats counters under their canonical keys (used by
  /// collect_bench.sh's smoke-mode learned-clause regression guard).
  JsonLine& solver_stats(const smt::SolveStats& s) {
    return field("conflicts", static_cast<std::size_t>(s.conflicts))
        .field("decisions", static_cast<std::size_t>(s.decisions))
        .field("propagations", static_cast<std::size_t>(s.propagations))
        .field("restarts", static_cast<std::size_t>(s.restarts))
        .field("learned_clauses", static_cast<std::size_t>(s.learned_clauses))
        .field("deleted_clauses", static_cast<std::size_t>(s.deleted_clauses))
        .field("learned_kept", s.learned_kept)
        .field("learned_hits", static_cast<std::size_t>(s.learned_hits))
        .field("theory_pivots", static_cast<std::size_t>(s.theory_pivots))
        .field("farkas_explanations",
               static_cast<std::size_t>(s.farkas_explanations))
        .field("threads", static_cast<std::size_t>(s.threads))
        .field("clauses_exported",
               static_cast<std::size_t>(s.clauses_exported))
        .field("clauses_imported",
               static_cast<std::size_t>(s.clauses_imported))
        .field("arena_bytes", static_cast<std::size_t>(s.arena_bytes))
        .field("arena_compactions",
               static_cast<std::size_t>(s.arena_compactions))
        .field("peak_arena_bytes",
               static_cast<std::size_t>(s.peak_arena_bytes))
        // "" after a definite verdict; a degraded run names its reason, so
        // an Unknown in a benchmark log is never silent.
        .field("stop_reason", util::to_string(s.stop_reason));
  }

  /// Prints `BENCH_JSON {...}` on its own line.
  void print() const { std::printf("BENCH_JSON %s}\n", body_.c_str()); }

 private:
  JsonLine& raw(const char* key, const std::string& value) {
    body_ += ",\"" + std::string(key) + "\":" + value;
    return *this;
  }

  std::string body_;
};

}  // namespace advocat::bench
