// Shared helpers for the experiment harnesses.
//
// Every binary prints the paper artifact it regenerates (paper value vs
// measured value). Defaults finish in seconds on one core; setting
// ADVOCAT_FULL=1 in the environment runs paper-scale instances.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace advocat::bench {

inline bool full_scale() { return std::getenv("ADVOCAT_FULL") != nullptr; }

inline void header(const char* id, const char* what) {
  std::printf("=== %s: %s ===\n", id, what);
  if (!full_scale()) {
    std::printf("(reduced instance sizes; set ADVOCAT_FULL=1 for "
                "paper-scale runs)\n");
  }
}

}  // namespace advocat::bench
