// E3 — Fig. 3: the cross-layer deadlock on a 2x2 mesh.
//
// Paper: with every queue of size 2, the abstract MI protocol deadlocks
// (cache (0,0) wedges get+put toward the directory, the directory spins on
// inv injection, the owner cannot flush); with size 3 the system is
// deadlock-free. ADVOCAT finds the size-2 deadlock, the explicit-state
// explorer confirms it is *reachable* (the role UPPAAL plays in the
// paper), and ADVOCAT proves size 3 free.
#include <cstdio>

#include "advocat/verifier.hpp"
#include "bench_util.hpp"
#include "coherence/mi_abstract.hpp"
#include "sim/explorer.hpp"
#include "sim/simulator.hpp"

using namespace advocat;

int main() {
  bench::header("E3 / Fig. 3", "cross-layer deadlock in a 2x2 mesh");

  for (std::size_t cap : {2u, 3u}) {
    coh::MiAbstractConfig config;
    config.queue_capacity = cap;
    coh::MiAbstractSystem sys = coh::build_mi_abstract(config);
    const core::VerifyResult result = core::verify(sys.net);
    std::printf("\nqueue size %zu: paper=%s measured=%s (%.2fs)\n", cap,
                cap == 2 ? "deadlock" : "free",
                bench::verdict_string(result.report.result),
                result.total_seconds);
    bench::JsonLine("fig3_crosslayer_deadlock")
        .field("capacity", cap)
        .field("verdict", bench::verdict_string(result.report.result))
        .field("encode_seconds", result.encode_seconds)
        .field("solve_seconds", result.solve_seconds)
        .field("seconds", result.total_seconds)
        .solver_stats(result.solve_stats)
        .print();
    // Only a definite Sat carries a witness worth confirming; an Unknown
    // verdict is reported above and is not a harness failure.
    if (result.report.result == smt::SatResult::Sat) {
      std::printf("%s", result.report.to_string().c_str());

      sim::Simulator simulator(sys.net);
      sim::ExploreOptions options;
      options.max_states = 500'000;
      const sim::ExploreResult reach = sim::explore(simulator, options);
      if (reach.deadlock.has_value()) {
        std::printf("explorer: deadlock REACHABLE after %zu states; "
                    "trace (%zu events):\n",
                    reach.states_visited, reach.trace.size());
        for (const auto& label : reach.trace) {
          std::printf("  %s\n", label.c_str());
        }
        std::printf("deadlocked state:\n%s",
                    simulator.describe(*reach.deadlock).c_str());
      } else {
        std::printf("explorer: no deadlock within %zu states\n",
                    reach.states_visited);
      }
    }
  }
  return 0;
}
