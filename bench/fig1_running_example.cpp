// E1/E2 — Fig. 1 running example.
//
// Reproduces: the automatically derived cross-layer invariant of Section 1
// and the two unreachable deadlock candidates of Section 3 (present without
// invariants, pruned with them). Also microbenchmarks the pipeline stages
// with google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "advocat/verifier.hpp"
#include "automata/builder.hpp"
#include "bench_util.hpp"
#include "invariants/generator.hpp"
#include "xmas/typing.hpp"

namespace {

using namespace advocat;

struct Fig1 {
  xmas::Network net;
  Fig1() {
    auto& colors = net.colors();
    const xmas::ColorId req = colors.intern("req");
    const xmas::ColorId ack = colors.intern("ack");
    const xmas::ColorId tok_s = colors.intern("tokS");
    const xmas::ColorId tok_t = colors.intern("tokT");
    aut::AutomatonBuilder bs("S", {"s0", "s1"});
    bs.in_ports(2).out_ports(1).initial("s0");
    bs.on("s0", 1, tok_s).emit(0, req).go("s1").label("req!");
    bs.on("s1", 0, ack).go("s0").label("ack?");
    const xmas::PrimId s = net.add_automaton(bs.build());
    aut::AutomatonBuilder bt("T", {"t0", "t1"});
    bt.in_ports(2).out_ports(1).initial("t0");
    bt.on("t0", 0, req).go("t1").label("req?");
    bt.on("t1", 1, tok_t).emit(0, ack).go("t0").label("ack!");
    const xmas::PrimId t = net.add_automaton(bt.build());
    const xmas::PrimId q0 = net.add_queue("q0", 2);
    const xmas::PrimId q1 = net.add_queue("q1", 2);
    net.connect(s, 0, q0, 0);
    net.connect(q0, 0, t, 0);
    net.connect(t, 0, q1, 0);
    net.connect(q1, 0, s, 0);
    net.connect(net.add_source("srcS", {tok_s}), 0, s, 1);
    net.connect(net.add_source("srcT", {tok_t}), 0, t, 1);
  }
};

void print_reproduction() {
  Fig1 sys;
  const xmas::Typing typing = xmas::Typing::derive(sys.net);
  inv::InvariantSet invariants = inv::generate(sys.net, typing);

  std::puts("=== E1: Fig. 1 running example ===");
  std::puts("paper invariant: #q0 + #q1 = S.s1 + T.t0 - 1");
  std::puts("derived invariants:");
  for (const auto& line : invariants.to_strings()) {
    std::printf("  %s\n", line.c_str());
  }

  core::VerifyOptions no_inv;
  no_inv.use_invariants = false;
  const auto plain = core::verify(sys.net, no_inv);
  const auto full = core::verify(sys.net);
  std::puts("\n=== E2: deadlock candidates (Section 3) ===");
  std::printf("paper: 2 unreachable candidates without invariants; none "
              "with\n");
  std::printf("measured: without invariants -> %s\n",
              bench::verdict_string(plain.report.result));
  std::printf("measured: with invariants    -> %s\n\n",
              bench::verdict_string(full.report.result));
  bench::JsonLine("fig1_running_example")
      .field("invariants", full.num_invariants)
      .field("verdict_without_invariants",
             bench::verdict_string(plain.report.result))
      .field("verdict_with_invariants",
             bench::verdict_string(full.report.result))
      .field("seconds", full.total_seconds)
      .solver_stats(full.solve_stats)
      .print();
}

void BM_InvariantGeneration(benchmark::State& state) {
  Fig1 sys;
  const xmas::Typing typing = xmas::Typing::derive(sys.net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(inv::generate(sys.net, typing));
  }
}
BENCHMARK(BM_InvariantGeneration);

void BM_FullVerification(benchmark::State& state) {
  Fig1 sys;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::verify(sys.net));
  }
}
BENCHMARK(BM_FullVerification);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
