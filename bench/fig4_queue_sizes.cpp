// E4 — Fig. 4: minimal queue sizes for deadlock freedom, per mesh size and
// directory position.
//
// Paper values: 3 for the 2x2 mesh; a 4x4 mesh shows 23 (corner rows) and
// 15 (inner rows, e.g. directory at (1,1)); a 5x5 mesh shows 39/29/19 by
// row distance from the centre. Our model reproduces 3 (2x2) and the 4x4
// values 23/15 exactly; the shape (monotone in mesh size and in the
// directory row's distance from the centre) is the claim under test.
//
// Each sizing run is timed twice: on the incremental Verifier session
// (validate/derive/encode once, one assumption flip per probe — the
// default) and on the legacy re-encode-per-probe path, so the BENCH_JSON
// trajectory records the incremental win on the same machine. Every
// available backend is measured (native always; z3 when compiled in): the
// native lines carry the CDCL learned-clause counters that the CI smoke
// guard in scripts/collect_bench.sh checks.
//
// Verdicts are normalized: a sizing run that hit an Unknown probe (solver
// timeout / degraded search) is reported as conclusive=false and excluded
// from the incremental-vs-reencode disagreement check — only a *definite*
// disagreement exits non-zero.
// A `--threads N` flag (default: ADVOCAT_THREADS, i.e. 1) runs the sizing
// searches with N concurrent capacity probes (round-based ladder +
// k-section; see QueueSizingOptions::probe_threads) — the lever behind the
// PR6 parallel-speedup trajectory (BENCH_PR6.json compares --threads 16
// against the sequential baseline). The re-encode reference runs stay
// sequential, so the disagreement check also cross-checks parallel against
// sequential verdicts.
// A `--position-threads N` flag (default 1) runs the directory-position
// sweep itself in parallel: every cell of a mesh's grid is an independent
// sizing problem (its own nets, Verifier sessions, and solver), so cells
// are computed into a results vector with util::parallel_for and printed
// serially in grid order afterwards — output and verdicts are identical to
// the serial sweep.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "advocat/verifier.hpp"
#include "bench_util.hpp"
#include "coherence/mi_abstract.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

using namespace advocat;

namespace {

unsigned g_threads = 1;
unsigned g_position_threads = 1;

core::QueueSizingResult size_run(int k, int dir_node, bool incremental,
                                 smt::Backend backend) {
  auto make = [k, dir_node](std::size_t cap) {
    coh::MiAbstractConfig config;
    config.width = k;
    config.height = k;
    config.queue_capacity = cap;
    config.directory_node = dir_node;
    return std::move(coh::build_mi_abstract(config).net);
  };
  core::QueueSizingOptions options;
  options.min_capacity = 1;
  options.max_capacity = 256;
  options.incremental = incremental;
  options.verify.backend = backend;
  // Parallel probes only on the incremental run; the re-encode reference
  // stays sequential so its timing is the single-thread baseline.
  if (incremental) options.probe_threads = g_threads;
  // Default runs stay bounded: a rare pathological directory position can
  // take the native solver ~1000x longer than its neighbours, and an
  // inconclusive cell (reported, not failed) beats an hour-long stall.
  // Paper-scale runs lift the cap.
  options.verify.timeout_ms = bench::full_scale() ? 0 : 120'000;
  return core::find_minimal_queue_size(make, options);
}

}  // namespace

namespace {

/// Both sizing runs for one directory position, computed cell-by-cell
/// (possibly in parallel) and printed later in grid order.
struct CellResult {
  core::QueueSizingResult inc;
  core::QueueSizingResult re;
};

}  // namespace

int main(int argc, char** argv) {
  g_threads = util::env_threads(1);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      g_threads = n < 1 ? 1 : (n > 256 ? 256u : static_cast<unsigned>(n));
    } else if (std::strcmp(argv[i], "--position-threads") == 0 &&
               i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      g_position_threads =
          n < 1 ? 1 : (n > 256 ? 256u : static_cast<unsigned>(n));
    }
  }
  bench::header("E4 / Fig. 4", "minimal queue sizes found by ADVOCAT");
  if (g_threads > 1) std::printf("(parallel probes: %u threads)\n", g_threads);
  if (g_position_threads > 1) {
    std::printf("(parallel position sweep: %u threads)\n", g_position_threads);
  }

  const int max_k = bench::smoke() ? 2 : (bench::full_scale() ? 5 : 4);
  int status = 0;
  for (const smt::Backend backend :
       {smt::Backend::Native, smt::Backend::Z3}) {
    if (!smt::backend_available(backend)) continue;
    for (int k = 2; k <= max_k; ++k) {
      std::printf("\n[%s] %dx%d mesh, minimal safe queue size per directory "
                  "position (incremental vs re-encode seconds):\n",
                  smt::to_string(backend), k, k);
      // Each cell is an independent sizing problem; compute them all first
      // (in parallel when asked), then print in grid order so the output
      // is byte-identical to the serial sweep.
      std::vector<CellResult> cells(static_cast<std::size_t>(k) * k);
      util::parallel_for(
          cells.size(), g_position_threads, [&](std::size_t i) {
            const int dir = static_cast<int>(i);
            cells[i].inc = size_run(k, dir, true, backend);
            cells[i].re = size_run(k, dir, false, backend);
          });
      for (int y = 0; y < k; ++y) {
        std::printf("  ");
        for (int x = 0; x < k; ++x) {
          const int dir = y * k + x;
          const core::QueueSizingResult& inc =
              cells[static_cast<std::size_t>(dir)].inc;
          const core::QueueSizingResult& re =
              cells[static_cast<std::size_t>(dir)].re;
          const bool conclusive =
              inc.unknown_probes == 0 && re.unknown_probes == 0;
          std::printf("%4zu", inc.minimal_capacity);
          bench::JsonLine("fig4_queue_sizes")
              .field("backend", smt::to_string(backend))
              .field("mesh", k)
              .field("directory_node", dir)
              .field("probe_threads", static_cast<std::size_t>(g_threads))
              .field("position_threads",
                     static_cast<std::size_t>(g_position_threads))
              .field("minimal_capacity", inc.minimal_capacity)
              .field("minimal_capacity_reencode", re.minimal_capacity)
              .field("conclusive", conclusive)
              .field("unknown_probes", inc.unknown_probes)
              .field("probes", inc.probes.size())
              .field("validations", inc.validations)
              .field("invariant_generations", inc.invariant_generations)
              .field("solver_checks", inc.solver_checks)
              .field("analysis_ms", inc.analysis_ms)
              .field("diagnostics", inc.diagnostics)
              .solver_stats(inc.solve_stats)
              .field("seconds", inc.seconds)
              .field("seconds_reencode", re.seconds)
              .print();
          if (!conclusive) {
            std::printf("\nnote: inconclusive sizing (unknown probes: "
                        "incremental=%zu reencode=%zu) at mesh=%d dir=%d — "
                        "not counted as a disagreement\n",
                        inc.unknown_probes, re.unknown_probes, k, dir);
            continue;
          }
          if (inc.minimal_capacity != re.minimal_capacity) {
            std::printf("\nMISMATCH: incremental=%zu reencode=%zu at "
                        "mesh=%d dir=%d backend=%s\n",
                        inc.minimal_capacity, re.minimal_capacity, k, dir,
                        smt::to_string(backend));
            status = 1;
          }
        }
        std::printf("\n");
      }
    }
  }
  std::printf("\npaper reference: 2x2 -> 3 everywhere; 4x4 -> 23 (outer "
              "rows) / 15 (inner rows); 5x5 -> 39/29/19 by row.\n");
  return status;
}
