// E4 — Fig. 4: minimal queue sizes for deadlock freedom, per mesh size and
// directory position.
//
// Paper values: 3 for the 2x2 mesh; a 4x4 mesh shows 23 (corner rows) and
// 15 (inner rows, e.g. directory at (1,1)); a 5x5 mesh shows 39/29/19 by
// row distance from the centre. Our model reproduces 3 (2x2) and the 4x4
// values 23/15 exactly; the shape (monotone in mesh size and in the
// directory row's distance from the centre) is the claim under test.
//
// Each sizing run is timed twice: on the incremental Verifier session
// (validate/derive/encode once, one assumption flip per probe — the
// default) and on the legacy re-encode-per-probe path, so the BENCH_JSON
// trajectory records the incremental win on the same machine.
#include <cstdio>

#include "advocat/verifier.hpp"
#include "bench_util.hpp"
#include "coherence/mi_abstract.hpp"

using namespace advocat;

namespace {

core::QueueSizingResult size_run(int k, int dir_node, bool incremental) {
  auto make = [k, dir_node](std::size_t cap) {
    coh::MiAbstractConfig config;
    config.width = k;
    config.height = k;
    config.queue_capacity = cap;
    config.directory_node = dir_node;
    return std::move(coh::build_mi_abstract(config).net);
  };
  core::QueueSizingOptions options;
  options.min_capacity = 1;
  options.max_capacity = 256;
  options.incremental = incremental;
  return core::find_minimal_queue_size(make, options);
}

}  // namespace

int main() {
  bench::header("E4 / Fig. 4", "minimal queue sizes found by ADVOCAT");

  const int max_k = bench::smoke() ? 2 : (bench::full_scale() ? 5 : 4);
  for (int k = 2; k <= max_k; ++k) {
    std::printf("\n%dx%d mesh, minimal safe queue size per directory "
                "position (incremental vs re-encode seconds):\n",
                k, k);
    for (int y = 0; y < k; ++y) {
      std::printf("  ");
      for (int x = 0; x < k; ++x) {
        const int dir = y * k + x;
        const core::QueueSizingResult inc = size_run(k, dir, true);
        const core::QueueSizingResult re = size_run(k, dir, false);
        std::printf("%4zu", inc.minimal_capacity);
        bench::JsonLine("fig4_queue_sizes")
            .field("mesh", k)
            .field("directory_node", dir)
            .field("minimal_capacity", inc.minimal_capacity)
            .field("minimal_capacity_reencode", re.minimal_capacity)
            .field("probes", inc.probes.size())
            .field("validations", inc.validations)
            .field("invariant_generations", inc.invariant_generations)
            .field("solver_checks", inc.solver_checks)
            .field("seconds", inc.seconds)
            .field("seconds_reencode", re.seconds)
            .print();
        if (inc.minimal_capacity != re.minimal_capacity) {
          std::printf("\nMISMATCH: incremental=%zu reencode=%zu at "
                      "mesh=%d dir=%d\n",
                      inc.minimal_capacity, re.minimal_capacity, k, dir);
          return 1;
        }
      }
      std::printf("\n");
    }
  }
  std::printf("\npaper reference: 2x2 -> 3 everywhere; 4x4 -> 23 (outer "
              "rows) / 15 (inner rows); 5x5 -> 39/29/19 by row.\n");
  return 0;
}
