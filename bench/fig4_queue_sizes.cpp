// E4 — Fig. 4: minimal queue sizes for deadlock freedom, per mesh size and
// directory position.
//
// Paper values: 3 for the 2x2 mesh; a 4x4 mesh shows 23 (corner rows) and
// 15 (inner rows, e.g. directory at (1,1)); a 5x5 mesh shows 39/29/19 by
// row distance from the centre. Our model reproduces 3 (2x2) and the 4x4
// values 23/15 exactly; the shape (monotone in mesh size and in the
// directory row's distance from the centre) is the claim under test.
//
// Each sizing run is timed twice: on the incremental Verifier session
// (validate/derive/encode once, one assumption flip per probe — the
// default) and on the legacy re-encode-per-probe path, so the BENCH_JSON
// trajectory records the incremental win on the same machine. Every
// available backend is measured (native always; z3 when compiled in): the
// native lines carry the CDCL learned-clause counters that the CI smoke
// guard in scripts/collect_bench.sh checks.
//
// Verdicts are normalized: a sizing run that hit an Unknown probe (solver
// timeout / degraded search) is reported as conclusive=false and excluded
// from the incremental-vs-reencode disagreement check — only a *definite*
// disagreement exits non-zero.
// A `--threads N` flag (default: ADVOCAT_THREADS, i.e. 1) runs the sizing
// searches with N concurrent capacity probes (round-based ladder +
// k-section; see QueueSizingOptions::probe_threads) — the lever behind the
// PR6 parallel-speedup trajectory (BENCH_PR6.json compares --threads 16
// against the sequential baseline). The re-encode reference runs stay
// sequential, so the disagreement check also cross-checks parallel against
// sequential verdicts.
// A `--position-threads N` flag (default 1) runs the directory-position
// sweep itself in parallel: every cell of a mesh's grid is an independent
// sizing problem (its own nets, Verifier sessions, and solver), so cells
// are computed into a results vector with util::parallel_for and printed
// serially in grid order afterwards — output and verdicts are identical to
// the serial sweep.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "advocat/verifier.hpp"
#include "bench_util.hpp"
#include "coherence/mi_abstract.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

using namespace advocat;

namespace {

unsigned g_threads = 1;
unsigned g_position_threads = 1;

/// Per-cell certificate sink: accumulates proof cost for the BENCH_JSON
/// line and, when ADVOCAT_PROOF_DIR is set (the CI certification step),
/// serializes every refutation of the sizing ladder so the standalone
/// advocat-check binary can revalidate them. Thread-safe because parallel
/// capacity probes share one cell's sink.
class CellProofSink : public smt::ProofSink {
 public:
  explicit CellProofSink(std::string prefix) : prefix_(std::move(prefix)) {}

  void on_unsat_certificate(const smt::Certificate& cert) override {
    const std::lock_guard<std::mutex> lock(mu_);
    ++count_;
    if (!cert.complete) ++incomplete_;
    bytes_ += cert.proof_bytes;
    ms_ += cert.proof_ms;
    if (!prefix_.empty()) {
      std::ofstream out(prefix_ + std::to_string(count_) + ".proof");
      out << cert.text;
    }
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] std::size_t incomplete() const { return incomplete_; }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] double ms() const { return ms_; }

 private:
  mutable std::mutex mu_;
  std::string prefix_;
  std::size_t count_ = 0;
  std::size_t incomplete_ = 0;
  std::size_t bytes_ = 0;
  double ms_ = 0.0;
};

core::QueueSizingResult size_run(int k, int dir_node, bool incremental,
                                 smt::Backend backend,
                                 smt::ProofSink* sink = nullptr) {
  auto make = [k, dir_node](std::size_t cap) {
    coh::MiAbstractConfig config;
    config.width = k;
    config.height = k;
    config.queue_capacity = cap;
    config.directory_node = dir_node;
    return std::move(coh::build_mi_abstract(config).net);
  };
  core::QueueSizingOptions options;
  options.min_capacity = 1;
  options.max_capacity = 256;
  options.incremental = incremental;
  options.verify.backend = backend;
  options.verify.proof_sink = sink;
  // Parallel probes only on the incremental run; the re-encode reference
  // stays sequential so its timing is the single-thread baseline.
  if (incremental) options.probe_threads = g_threads;
  // Default runs stay bounded: a rare pathological directory position can
  // take the native solver ~1000x longer than its neighbours, and an
  // inconclusive cell (reported, not failed) beats an hour-long stall.
  // Paper-scale runs lift the cap.
  options.verify.timeout_ms = bench::full_scale() ? 0 : 120'000;
  return core::find_minimal_queue_size(make, options);
}

}  // namespace

namespace {

/// Both sizing runs for one directory position, computed cell-by-cell
/// (possibly in parallel) and printed later in grid order.
struct CellResult {
  core::QueueSizingResult inc;
  core::QueueSizingResult re;
  std::size_t proofs = 0;
  std::size_t proofs_incomplete = 0;
  std::size_t proof_bytes = 0;
  double proof_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  g_threads = util::env_threads(1);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      g_threads = n < 1 ? 1 : (n > 256 ? 256u : static_cast<unsigned>(n));
    } else if (std::strcmp(argv[i], "--position-threads") == 0 &&
               i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      g_position_threads =
          n < 1 ? 1 : (n > 256 ? 256u : static_cast<unsigned>(n));
    }
  }
  bench::header("E4 / Fig. 4", "minimal queue sizes found by ADVOCAT");
  if (g_threads > 1) std::printf("(parallel probes: %u threads)\n", g_threads);
  if (g_position_threads > 1) {
    std::printf("(parallel position sweep: %u threads)\n", g_position_threads);
  }

  const int max_k = bench::smoke() ? 2 : (bench::full_scale() ? 5 : 4);
  int status = 0;
  for (const smt::Backend backend :
       {smt::Backend::Native, smt::Backend::Z3}) {
    if (!smt::backend_available(backend)) continue;
    for (int k = 2; k <= max_k; ++k) {
      std::printf("\n[%s] %dx%d mesh, minimal safe queue size per directory "
                  "position (incremental vs re-encode seconds):\n",
                  smt::to_string(backend), k, k);
      // Each cell is an independent sizing problem; compute them all first
      // (in parallel when asked), then print in grid order so the output
      // is byte-identical to the serial sweep.
      std::vector<CellResult> cells(static_cast<std::size_t>(k) * k);
      const char* proof_dir = std::getenv("ADVOCAT_PROOF_DIR");
      util::parallel_for(
          cells.size(), g_position_threads, [&, proof_dir](std::size_t i) {
            const int dir = static_cast<int>(i);
            // Certificates are logged on the incremental run only: the
            // re-encode reference refutes the identical probes, and
            // doubling the proof volume would only slow the CI
            // certification step without adding coverage.
            CellProofSink sink(
                proof_dir == nullptr
                    ? std::string{}
                    : std::string(proof_dir) + "/fig4_" +
                          smt::to_string(backend) + "_k" + std::to_string(k) +
                          "_d" + std::to_string(dir) + "_");
            cells[i].inc = size_run(k, dir, true, backend, &sink);
            cells[i].re = size_run(k, dir, false, backend);
            cells[i].proofs = sink.count();
            cells[i].proofs_incomplete = sink.incomplete();
            cells[i].proof_bytes = sink.bytes();
            cells[i].proof_ms = sink.ms();
          });
      for (int y = 0; y < k; ++y) {
        std::printf("  ");
        for (int x = 0; x < k; ++x) {
          const int dir = y * k + x;
          const core::QueueSizingResult& inc =
              cells[static_cast<std::size_t>(dir)].inc;
          const core::QueueSizingResult& re =
              cells[static_cast<std::size_t>(dir)].re;
          const bool conclusive =
              inc.unknown_probes == 0 && re.unknown_probes == 0;
          std::printf("%4zu", inc.minimal_capacity);
          bench::JsonLine("fig4_queue_sizes")
              .field("backend", smt::to_string(backend))
              .field("mesh", k)
              .field("directory_node", dir)
              .field("probe_threads", static_cast<std::size_t>(g_threads))
              .field("position_threads",
                     static_cast<std::size_t>(g_position_threads))
              .field("minimal_capacity", inc.minimal_capacity)
              .field("minimal_capacity_reencode", re.minimal_capacity)
              .field("conclusive", conclusive)
              .field("unknown_probes", inc.unknown_probes)
              .field("probes", inc.probes.size())
              .field("validations", inc.validations)
              .field("invariant_generations", inc.invariant_generations)
              .field("solver_checks", inc.solver_checks)
              .field("analysis_ms", inc.analysis_ms)
              .field("diagnostics", inc.diagnostics)
              .solver_stats(inc.solve_stats)
              .field("proofs", cells[static_cast<std::size_t>(dir)].proofs)
              .field("proofs_incomplete",
                     cells[static_cast<std::size_t>(dir)].proofs_incomplete)
              .field("proof_bytes",
                     cells[static_cast<std::size_t>(dir)].proof_bytes)
              .field("proof_ms", cells[static_cast<std::size_t>(dir)].proof_ms)
              .field("seconds", inc.seconds)
              .field("seconds_reencode", re.seconds)
              .print();
          if (!conclusive) {
            std::printf("\nnote: inconclusive sizing (unknown probes: "
                        "incremental=%zu reencode=%zu) at mesh=%d dir=%d — "
                        "not counted as a disagreement\n",
                        inc.unknown_probes, re.unknown_probes, k, dir);
            continue;
          }
          if (inc.minimal_capacity != re.minimal_capacity) {
            std::printf("\nMISMATCH: incremental=%zu reencode=%zu at "
                        "mesh=%d dir=%d backend=%s\n",
                        inc.minimal_capacity, re.minimal_capacity, k, dir,
                        smt::to_string(backend));
            status = 1;
          }
        }
        std::printf("\n");
      }
    }
  }
  std::printf("\npaper reference: 2x2 -> 3 everywhere; 4x4 -> 23 (outer "
              "rows) / 15 (inner rows); 5x5 -> 39/29/19 by row.\n");
  return status;
}
