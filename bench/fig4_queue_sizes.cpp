// E4 — Fig. 4: minimal queue sizes for deadlock freedom, per mesh size and
// directory position.
//
// Paper values: 3 for the 2x2 mesh; a 4x4 mesh shows 23 (corner rows) and
// 15 (inner rows, e.g. directory at (1,1)); a 5x5 mesh shows 39/29/19 by
// row distance from the centre. Our model reproduces 3 (2x2) and the 4x4
// values 23/15 exactly; the shape (monotone in mesh size and in the
// directory row's distance from the centre) is the claim under test.
#include <cstdio>

#include "advocat/verifier.hpp"
#include "bench_util.hpp"
#include "coherence/mi_abstract.hpp"

using namespace advocat;

namespace {

std::size_t minimal_size(int k, int dir_node) {
  auto make = [k, dir_node](std::size_t cap) {
    coh::MiAbstractConfig config;
    config.width = k;
    config.height = k;
    config.queue_capacity = cap;
    config.directory_node = dir_node;
    return std::move(coh::build_mi_abstract(config).net);
  };
  core::QueueSizingOptions options;
  options.min_capacity = 1;
  options.max_capacity = 256;
  return core::find_minimal_queue_size(make, options).minimal_capacity;
}

}  // namespace

int main() {
  bench::header("E4 / Fig. 4", "minimal queue sizes found by ADVOCAT");

  const int max_k = bench::full_scale() ? 5 : 4;
  bench::Timer timer;
  for (int k = 2; k <= max_k; ++k) {
    std::printf("\n%dx%d mesh, minimal safe queue size per directory "
                "position:\n",
                k, k);
    for (int y = 0; y < k; ++y) {
      std::printf("  ");
      for (int x = 0; x < k; ++x) {
        timer.reset();
        const std::size_t size = minimal_size(k, y * k + x);
        std::printf("%4zu", size);
        bench::JsonLine("fig4_queue_sizes")
            .field("mesh", k)
            .field("directory_node", y * k + x)
            .field("minimal_capacity", size)
            .field("seconds", timer.seconds())
            .print();
      }
      std::printf("\n");
    }
  }
  std::printf("\npaper reference: 2x2 -> 3 everywhere; 4x4 -> 23 (outer "
              "rows) / 15 (inner rows); 5x5 -> 39/29/19 by row.\n");
  return 0;
}
