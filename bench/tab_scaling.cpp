// E6 — Section 5 "Experimental Results": end-to-end verification effort vs
// mesh size, and queue-size independence of the verification time.
//
// Paper reference points (2 GHz Core i7, 2016): a 6x6 mesh with VCs and
// queue size 30 verifies in 67 s and contains 2844 primitives, 36 automata
// and 432 queues. We print the same columns for growing meshes and check
// that verification time does not depend on the queue size — the sweep
// runs as capacity probes on one incremental Verifier session, so the
// per-capacity cost is a single assumption-flip re-solve.
#include <cstdio>

#include "advocat/verifier.hpp"
#include "bench_util.hpp"
#include "coherence/mi_abstract.hpp"

using namespace advocat;

int main() {
  bench::header("E6", "verification effort vs mesh size");

  // Smoke stays at 2x2: 3x3+ one-shot proofs are Z3-only until the native
  // solver learns clauses (see ROADMAP), and smoke runs without Z3 in CI.
  const int max_k = bench::smoke() ? 2 : (bench::full_scale() ? 6 : 5);
  std::printf("\n%-6s %6s %10s %8s %7s %6s %9s %9s %9s %9s\n", "mesh", "vcs",
              "prims", "automata", "queues", "inv", "t_inv(s)", "t_enc(s)",
              "t_smt(s)", "total(s)");
  for (int k = 2; k <= max_k; ++k) {
    const int vcs = k == 6 ? 2 : 1;  // the paper's 6x6 data point uses VCs
    coh::MiAbstractConfig config;
    config.width = k;
    config.height = k;
    config.queue_capacity = 30;
    config.num_vcs = vcs;
    bench::Timer watch;
    coh::MiAbstractSystem sys = coh::build_mi_abstract(config);
    const core::VerifyResult r = core::verify(sys.net);
    std::printf("%dx%-4d %6d %10zu %8zu %7zu %6zu %9.2f %9.2f %9.2f %9.2f  [%s]\n",
                k, k, vcs, sys.net.num_prims_desugared(),
                sys.net.automata().size(), sys.net.num_queues(),
                r.num_invariants, r.invariant_seconds, r.encode_seconds,
                r.solve_seconds, watch.seconds(),
                bench::verdict_string(r.report.result));
    bench::JsonLine("tab_scaling")
        .field("mesh", k)
        .field("vcs", vcs)
        .field("primitives", sys.net.num_prims_desugared())
        .field("invariants", r.num_invariants)
        .field("invariant_seconds", r.invariant_seconds)
        .field("encode_seconds", r.encode_seconds)
        .field("solve_seconds", r.solve_seconds)
        .field("total_seconds", watch.seconds())
        .field("verdict", bench::verdict_string(r.report.result))
        .solver_stats(r.solve_stats)
        .print();
  }
  std::printf("paper 6x6+VC reference: 2844 primitives, 36 automata, "
              "432 queues, 67 s total.\n");

  // Queue-size independence (the paper's explicit observation), measured
  // as assumption flips on one live session of the sweep mesh.
  const int sweep_k = bench::smoke() ? 2 : 4;
  std::printf("\nverification time vs queue size (%dx%d mesh, one "
              "incremental session):\n",
              sweep_k, sweep_k);
  coh::MiAbstractConfig config;
  config.width = sweep_k;
  config.height = sweep_k;
  config.queue_capacity = 25;
  core::VerifyOptions vo;
  vo.symbolic_capacities = true;
  core::Verifier session(coh::build_mi_abstract(config).net, vo);
  for (std::size_t cap : {25u, 50u, 100u, 200u}) {
    const core::VerifyResult r = session.probe_capacity(cap);
    std::printf("  capacity %4zu: solve %.2fs (%s)\n", cap, r.solve_seconds,
                bench::verdict_string(r.report.result));
    bench::JsonLine("tab_scaling_capacity_sweep")
        .field("mesh", sweep_k)
        .field("capacity", cap)
        .field("encode_seconds", r.encode_seconds)
        .field("solve_seconds", r.solve_seconds)
        .field("total_seconds", r.total_seconds)
        .field("verdict", bench::verdict_string(r.report.result))
        .solver_stats(r.solve_stats)
        .print();
  }
  std::printf("paper: verification time does not depend on queue size.\n");
  return 0;
}
