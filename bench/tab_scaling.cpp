// E6 — Section 5 "Experimental Results": end-to-end verification effort vs
// mesh size, and queue-size independence of the verification time.
//
// Paper reference points (2 GHz Core i7, 2016): a 6x6 mesh with VCs and
// queue size 30 verifies in 67 s and contains 2844 primitives, 36 automata
// and 432 queues. We print the same columns for growing meshes and check
// that verification time does not depend on the queue size.
#include <cstdio>

#include "advocat/verifier.hpp"
#include "bench_util.hpp"
#include "coherence/mi_abstract.hpp"

using namespace advocat;

int main() {
  bench::header("E6", "verification effort vs mesh size");

  const int max_k = bench::full_scale() ? 6 : 5;
  std::printf("\n%-6s %6s %10s %8s %7s %6s %9s %9s %9s\n", "mesh", "vcs",
              "prims", "automata", "queues", "inv", "t_inv(s)", "t_smt(s)",
              "total(s)");
  for (int k = 2; k <= max_k; ++k) {
    const int vcs = k == 6 ? 2 : 1;  // the paper's 6x6 data point uses VCs
    coh::MiAbstractConfig config;
    config.width = k;
    config.height = k;
    config.queue_capacity = 30;
    config.num_vcs = vcs;
    bench::Timer watch;
    coh::MiAbstractSystem sys = coh::build_mi_abstract(config);
    const core::VerifyResult r = core::verify(sys.net);
    std::printf("%dx%-4d %6d %10zu %8zu %7zu %6zu %9.2f %9.2f %9.2f  [%s]\n",
                k, k, vcs, sys.net.num_prims_desugared(),
                sys.net.automata().size(), sys.net.num_queues(),
                r.num_invariants, r.invariant_seconds,
                r.report.solve_seconds, watch.seconds(),
                r.deadlock_free() ? "free" : "deadlock");
    bench::JsonLine("tab_scaling")
        .field("mesh", k)
        .field("vcs", vcs)
        .field("primitives", sys.net.num_prims_desugared())
        .field("invariants", r.num_invariants)
        .field("invariant_seconds", r.invariant_seconds)
        .field("solve_seconds", r.report.solve_seconds)
        .field("total_seconds", watch.seconds())
        .field("verdict", r.deadlock_free() ? "free" : "deadlock")
        .print();
  }
  std::printf("paper 6x6+VC reference: 2844 primitives, 36 automata, "
              "432 queues, 67 s total.\n");

  // Queue-size independence (the paper's explicit observation).
  std::printf("\nverification time vs queue size (4x4 mesh):\n");
  for (std::size_t cap : {25u, 50u, 100u, 200u}) {
    coh::MiAbstractConfig config;
    config.width = 4;
    config.height = 4;
    config.queue_capacity = cap;
    coh::MiAbstractSystem sys = coh::build_mi_abstract(config);
    const core::VerifyResult r = core::verify(sys.net);
    std::printf("  capacity %4zu: %.2fs (%s)\n", cap, r.total_seconds,
                r.deadlock_free() ? "free" : "deadlock");
    bench::JsonLine("tab_scaling_capacity_sweep")
        .field("mesh", 4)
        .field("capacity", cap)
        .field("total_seconds", r.total_seconds)
        .field("verdict", r.deadlock_free() ? "free" : "deadlock")
        .print();
  }
  std::printf("paper: verification time does not depend on queue size.\n");
  return 0;
}
