// E7 — Section 5: virtual channels do not remove the cross-layer deadlock
// but reduce the required queue size.
//
// Paper reference: a 6x6 mesh is deadlock-free for VC sizes > 29; without
// VCs the queues have to be of size 58 (about 2x). We sweep VC
// configurations on a 4x4 mesh (6x6 under ADVOCAT_FULL) and report the
// minimal safe per-queue size: 1 VC (none), 2 VCs (request/response) and
// 4 VCs (one class per message type, the paper's Dally-style separation).
#include <cstdio>

#include "advocat/verifier.hpp"
#include "bench_util.hpp"
#include "coherence/mi_abstract.hpp"

using namespace advocat;

int main() {
  bench::header("E7", "virtual-channel ablation");

  const int k = bench::smoke() ? 2 : (bench::full_scale() ? 6 : 4);
  std::printf("\n%dx%d mesh, directory lower-right:\n", k, k);
  for (int vcs : {1, 2, 4}) {
    auto make = [k, vcs](std::size_t cap) {
      coh::MiAbstractConfig config;
      config.width = k;
      config.height = k;
      config.queue_capacity = cap;
      config.num_vcs = vcs;
      return std::move(coh::build_mi_abstract(config).net);
    };
    core::QueueSizingOptions options;
    options.min_capacity = 1;
    options.max_capacity = 256;
    const core::QueueSizingResult r = core::find_minimal_queue_size(make, options);
    // The deadlock must persist for *some* size even with VCs (the paper's
    // central claim about VCs); report the largest probe with a *definite*
    // deadlock verdict (Unknown probes are inconclusive, not deadlocks).
    std::size_t largest_bad = 0;
    for (const auto& [cap, verdict] : r.probes) {
      if (verdict == smt::SatResult::Sat && cap > largest_bad) {
        largest_bad = cap;
      }
    }
    std::printf("  %d VC%s: minimal safe queue size %zu "
                "(deadlock still present at %zu%s) [%.1fs]\n",
                vcs, vcs == 1 ? " " : "s", r.minimal_capacity, largest_bad,
                r.unknown_probes > 0 ? "; some probes unknown" : "",
                r.seconds);
    bench::JsonLine("tab_vc_ablation")
        .field("mesh", k)
        .field("vcs", vcs)
        .field("minimal_capacity", r.minimal_capacity)
        .field("conclusive", r.unknown_probes == 0)
        .field("unknown_probes", r.unknown_probes)
        .field("largest_deadlocked_capacity", largest_bad)
        .field("seconds", r.seconds)
        .solver_stats(r.solve_stats)
        .print();
  }
  std::printf("\npaper reference (6x6): no VCs -> 58, with VCs -> >29; "
              "VCs cannot remove the deadlock, only shrink the bound.\n");
  return 0;
}
