// E8 — Section 5 "MI Protocol": the GEM5-inspired MI protocol with
// cache-to-cache transfer, writeback ack/nack and DMA.
//
// Paper reference: 14 invariants on 2x2; verified for all meshes up to
// 5x5; when queue sizes are too small a cross-layer deadlock is found
// (32 min on 5x5), a proof of deadlock freedom takes 56 min. We report the
// derived invariant count, the minimal safe queue size per mesh, and the
// deadlock-found vs deadlock-free verification times.
#include <cstdio>

#include "advocat/verifier.hpp"
#include "bench_util.hpp"
#include "coherence/mi_gem5.hpp"
#include "xmas/typing.hpp"

using namespace advocat;

int main() {
  bench::header("E8", "GEM5-inspired MI protocol");

  // Invariant count on 2x2 (paper: 14 invariants).
  {
    coh::MiGem5Config config;
    config.queue_capacity = 4;
    coh::MiGem5System sys = coh::build_mi_gem5(config);
    const core::VerifyResult r = core::verify(sys.net);
    std::printf("\n2x2: %zu derived equalities (paper: 14 invariants), "
                "verdict %s\n",
                r.num_invariants, bench::verdict_string(r.report.result));
    for (const auto& line : r.invariant_text) {
      std::printf("  %s\n", line.c_str());
    }
  }

  const int max_k = bench::smoke() ? 2 : (bench::full_scale() ? 5 : 4);
  std::printf("\nminimal safe queue size and timing per mesh:\n");
  std::printf("%-6s %8s %14s %14s\n", "mesh", "min cap",
              "t_deadlock(s)", "t_proof(s)");
  for (int k = 2; k <= max_k; ++k) {
    auto make = [k](std::size_t cap) {
      coh::MiGem5Config config;
      config.width = k;
      config.height = k;
      config.queue_capacity = cap;
      return std::move(coh::build_mi_gem5(config).net);
    };
    core::QueueSizingOptions options;
    options.min_capacity = 1;
    options.max_capacity = 256;
    const auto sizing = core::find_minimal_queue_size(make, options);

    // A sizing run that hit Unknown probes is reported explicitly instead
    // of silently continuing with a possibly over-sized minimum.
    if (sizing.unknown_probes > 0) {
      std::printf("%dx%-4d %8zu  (inconclusive: %zu unknown probes)\n", k, k,
                  sizing.minimal_capacity, sizing.unknown_probes);
    }
    double t_deadlock = 0.0;
    double t_proof = 0.0;
    // "skipped" = the check never ran (no boundary to probe), distinct
    // from a solver that ran and returned unknown.
    const char* v_deadlock = "skipped";
    const char* v_proof = "skipped";
    if (sizing.minimal_capacity > 1) {
      coh::MiGem5Config config;
      config.width = k;
      config.height = k;
      config.queue_capacity = sizing.minimal_capacity - 1;
      const auto r = core::verify(coh::build_mi_gem5(config).net);
      t_deadlock = r.total_seconds;
      v_deadlock = bench::verdict_string(r.report.result);
    }
    if (sizing.minimal_capacity > 0) {
      coh::MiGem5Config config;
      config.width = k;
      config.height = k;
      config.queue_capacity = sizing.minimal_capacity;
      const auto r = core::verify(coh::build_mi_gem5(config).net);
      t_proof = r.total_seconds;
      v_proof = bench::verdict_string(r.report.result);
    }
    std::printf("%dx%-4d %8zu %14.2f %14.2f  [%s / %s]\n", k, k,
                sizing.minimal_capacity, t_deadlock, t_proof, v_deadlock,
                v_proof);
    bench::JsonLine("tab_mi_gem5")
        .field("mesh", k)
        .field("minimal_capacity", sizing.minimal_capacity)
        .field("conclusive", sizing.unknown_probes == 0)
        .field("unknown_probes", sizing.unknown_probes)
        .field("sizing_probes", sizing.probes.size())
        .field("sizing_solver_checks", sizing.solver_checks)
        .field("sizing_incremental", sizing.incremental)
        .field("sizing_seconds", sizing.seconds)
        .solver_stats(sizing.solve_stats)
        .field("deadlock_verdict", v_deadlock)
        .field("deadlock_seconds", t_deadlock)
        .field("proof_verdict", v_proof)
        .field("proof_seconds", t_proof)
        .print();
  }
  std::printf("\npaper reference (5x5): deadlock found in 32 min, proof of "
              "freedom in 56 min (2016 hardware); the shape under test is "
              "deadlock-when-small / proof-when-large.\n");
  return 0;
}
