// E8 — Section 5 "MI Protocol": the GEM5-inspired MI protocol with
// cache-to-cache transfer, writeback ack/nack and DMA.
//
// Paper reference: 14 invariants on 2x2; verified for all meshes up to
// 5x5; when queue sizes are too small a cross-layer deadlock is found
// (32 min on 5x5), a proof of deadlock freedom takes 56 min. We report the
// derived invariant count, the minimal safe queue size per mesh, and the
// deadlock-found vs deadlock-free verification times.
#include <cstdio>

#include "advocat/verifier.hpp"
#include "bench_util.hpp"
#include "coherence/mi_gem5.hpp"
#include "xmas/typing.hpp"

using namespace advocat;

int main() {
  bench::header("E8", "GEM5-inspired MI protocol");

  // Invariant count on 2x2 (paper: 14 invariants).
  {
    coh::MiGem5Config config;
    config.queue_capacity = 4;
    coh::MiGem5System sys = coh::build_mi_gem5(config);
    const core::VerifyResult r = core::verify(sys.net);
    std::printf("\n2x2: %zu derived equalities (paper: 14 invariants), "
                "verdict %s\n",
                r.num_invariants,
                r.deadlock_free() ? "deadlock-free" : "deadlock");
    for (const auto& line : r.invariant_text) {
      std::printf("  %s\n", line.c_str());
    }
  }

  const int max_k = bench::smoke() ? 2 : (bench::full_scale() ? 5 : 4);
  std::printf("\nminimal safe queue size and timing per mesh:\n");
  std::printf("%-6s %8s %14s %14s\n", "mesh", "min cap",
              "t_deadlock(s)", "t_proof(s)");
  for (int k = 2; k <= max_k; ++k) {
    auto make = [k](std::size_t cap) {
      coh::MiGem5Config config;
      config.width = k;
      config.height = k;
      config.queue_capacity = cap;
      return std::move(coh::build_mi_gem5(config).net);
    };
    core::QueueSizingOptions options;
    options.min_capacity = 1;
    options.max_capacity = 256;
    const auto sizing = core::find_minimal_queue_size(make, options);

    double t_deadlock = 0.0;
    double t_proof = 0.0;
    if (sizing.minimal_capacity > 1) {
      coh::MiGem5Config config;
      config.width = k;
      config.height = k;
      config.queue_capacity = sizing.minimal_capacity - 1;
      const auto r = core::verify(coh::build_mi_gem5(config).net);
      t_deadlock = r.total_seconds;
    }
    {
      coh::MiGem5Config config;
      config.width = k;
      config.height = k;
      config.queue_capacity = sizing.minimal_capacity;
      const auto r = core::verify(coh::build_mi_gem5(config).net);
      t_proof = r.total_seconds;
    }
    std::printf("%dx%-4d %8zu %14.2f %14.2f\n", k, k,
                sizing.minimal_capacity, t_deadlock, t_proof);
    bench::JsonLine("tab_mi_gem5")
        .field("mesh", k)
        .field("minimal_capacity", sizing.minimal_capacity)
        .field("sizing_probes", sizing.probes.size())
        .field("sizing_solver_checks", sizing.solver_checks)
        .field("sizing_incremental", sizing.incremental)
        .field("sizing_seconds", sizing.seconds)
        .field("deadlock_seconds", t_deadlock)
        .field("proof_seconds", t_proof)
        .print();
  }
  std::printf("\npaper reference (5x5): deadlock found in 32 min, proof of "
              "freedom in 56 min (2016 hardware); the shape under test is "
              "deadlock-when-small / proof-when-large.\n");
  return 0;
}
