// E5 — Section 5 "Experimental Results": the automatically derived
// cross-layer invariants for a 2x2 mesh with the directory at the
// lower-right node.
//
// The paper reports (for the upper-left cache c, directory d):
//   (3)  1 = #getX(c) + #ack(c) + c.I + d.M(c) + d.MI(c)
//   (4)  d.MI(c) relates the en-route putX/ack to the directory wait state
// and 6 invariants in total for the three caches. We print the full
// derived equality basis and check invariant (3) is in its span.
#include <cstdio>

#include "bench_util.hpp"
#include "coherence/mi_abstract.hpp"
#include "invariants/generator.hpp"
#include "linalg/eliminator.hpp"
#include "xmas/typing.hpp"

using namespace advocat;

int main() {
  bench::header("E5", "derived invariants, 2x2 mesh, directory lower-right");

  coh::MiAbstractConfig config;
  config.queue_capacity = 2;
  coh::MiAbstractSystem sys = coh::build_mi_abstract(config);
  const xmas::Typing typing = xmas::Typing::derive(sys.net);
  inv::InvariantSet set = inv::generate(sys.net, typing);

  std::printf("\nderived invariant basis (%zu equalities):\n",
              set.equalities.size());
  for (const auto& line : set.to_strings()) {
    std::printf("  %s\n", line.c_str());
  }

  // Span check for the paper's invariant (3), cache 0 (upper-left, node 0):
  //   #get(0->3) + #ack(3->0) + cache0.I + dir.M(0) + dir.MI(0) - 1 = 0
  // where the #-terms sum over every queue that can hold the color.
  const inv::VarSpace& vars = *set.vars;
  linalg::SparseRow paper;
  const xmas::ColorId get = sys.net.colors().intern(coh::kGet, 0, 3);
  const xmas::ColorId ack = sys.net.colors().intern(coh::kAck, 3, 0);
  for (xmas::PrimId q : sys.net.prims_of_kind(xmas::PrimKind::Queue)) {
    const auto& stored = typing.of(sys.net.prim(q).in[0]);
    if (xmas::set_contains(stored, get)) paper.add(vars.occ(q, get), 1);
    if (xmas::set_contains(stored, ack)) paper.add(vars.occ(q, ack), 1);
  }
  const int cache0 = sys.automaton_of_node[0];
  const int dir = sys.automaton_of_node[static_cast<std::size_t>(sys.directory_node)];
  const auto& dir_aut = sys.net.automata()[static_cast<std::size_t>(dir)];
  auto dir_state = [&](const std::string& name) {
    for (int s = 0; s < dir_aut.num_states(); ++s) {
      if (dir_aut.states[static_cast<std::size_t>(s)] == name) return s;
    }
    return -1;
  };
  paper.add(vars.state(cache0, 0), 1);                     // cache0.I
  paper.add(vars.state(dir, dir_state("M(0)")), 1);        // dir.M(0)
  paper.add(vars.state(dir, dir_state("MI(0)")), 1);       // dir.MI(0)
  paper.add_constant(-1);

  std::vector<linalg::SparseRow> rows = set.equalities;
  linalg::Eliminator::reduce_rref(rows);
  const std::size_t rank = rows.size();
  rows.push_back(paper);
  linalg::Eliminator::reduce_rref(rows);
  std::printf("\npaper invariant (3) in derived span: %s\n",
              rows.size() == rank ? "YES" : "NO");
  std::printf("paper reference: 6 cache-related invariants for 3 caches; "
              "sufficient to prove deadlock freedom at queue size 3.\n");
  bench::JsonLine("tab_invariants_2x2")
      .field("equalities", set.equalities.size())
      .field("inequalities", set.inequalities.size())
      .field("paper_invariant_in_span", rows.size() == rank)
      .field("seconds", set.seconds)
      .print();
  return rows.size() == rank ? 0 : 1;
}
