// Propagation microbenchmark for the native CDCL core.
//
// Two pure-boolean workloads stress the exact code paths the packed clause
// arena and blocker-literal watches were built for:
//
//  - "php": pigeonhole PHP(p, p-1), unsat and resolution-hard — a dense
//    conflict/learning/deletion workload. Drives the clause-DB reduction
//    and arena-compaction machinery (arena_compactions > 0 at default
//    sizes) and measures end-to-end refutation time.
//  - "chain": many long implication chains toggled by assumption probes —
//    nearly conflict-free, so its runtime is dominated by propagate_bool()
//    walking watcher lists. The propagations/second figure is the direct
//    blocker-watch throughput metric.
//
// Each scenario emits one BENCH_JSON line (bench "propagate", a "name"
// field, seconds, props_per_sec, and the full solver_stats block including
// arena_bytes / arena_compactions), so scripts/collect_bench.sh picks the
// lines up automatically. Scenario sizes follow the usual ladder:
// ADVOCAT_SMOKE < default < ADVOCAT_FULL.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "smt/expr.hpp"
#include "smt/solver.hpp"

using namespace advocat;

namespace {

// PHP(p, h): p pigeons into h holes; unsat for p > h.
std::vector<smt::ExprId> pigeonhole(smt::ExprFactory& f, int pigeons,
                                    int holes) {
  std::vector<smt::ExprId> constraints;
  std::vector<std::vector<smt::ExprId>> in(
      static_cast<std::size_t>(pigeons),
      std::vector<smt::ExprId>(static_cast<std::size_t>(holes)));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)] =
          f.bool_var("pb_p" + std::to_string(p) + "h" + std::to_string(h));
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    constraints.push_back(f.or_(in[static_cast<std::size_t>(p)]));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        constraints.push_back(
            f.or_({f.not_(in[static_cast<std::size_t>(p1)]
                            [static_cast<std::size_t>(h)]),
                   f.not_(in[static_cast<std::size_t>(p2)]
                            [static_cast<std::size_t>(h)])}));
      }
    }
  }
  return constraints;
}

void emit(const char* name, double seconds, const smt::SolveStats& stats) {
  const double props =
      seconds > 0.0 ? static_cast<double>(stats.propagations) / seconds : 0.0;
  bench::JsonLine("propagate")
      .field("name", name)
      .field("seconds", seconds)
      .field("props_per_sec", props)
      .solver_stats(stats)
      .print();
}

// Conflict-heavy: refute PHP(p, p-1) from scratch.
void run_php(int pigeons) {
  smt::ExprFactory f;
  auto solver = smt::make_solver(f, smt::Backend::Native);
  for (smt::ExprId c : pigeonhole(f, pigeons, pigeons - 1)) solver->add(c);
  bench::Timer timer;
  const smt::SatResult r = solver->check();
  const double seconds = timer.seconds();
  std::printf("  php(%d,%d): %s in %.3fs, %llu conflicts, "
              "%llu propagations\n",
              pigeons, pigeons - 1, smt::to_string(r),
              seconds, static_cast<unsigned long long>(
                           solver->solve_stats().conflicts),
              static_cast<unsigned long long>(
                  solver->solve_stats().propagations));
  emit("php", seconds, solver->solve_stats());
}

// Propagation-heavy: `chains` implication chains of length `len`, each
// headed by a trigger variable. Probing a trigger true forces its whole
// chain by unit propagation; flipping triggers across `probes` incremental
// checks makes propagate_bool() the hot loop with almost no conflicts.
void run_chain(int chains, int len, int probes) {
  smt::ExprFactory f;
  auto solver = smt::make_solver(f, smt::Backend::Native);
  std::vector<smt::ExprId> triggers;
  triggers.reserve(static_cast<std::size_t>(chains));
  for (int c = 0; c < chains; ++c) {
    smt::ExprId prev = f.bool_var("pb_t" + std::to_string(c));
    triggers.push_back(prev);
    for (int i = 0; i < len; ++i) {
      const smt::ExprId next = f.bool_var("pb_c" + std::to_string(c) + "_" +
                                          std::to_string(i));
      solver->add(f.or_({f.not_(prev), next}));
      prev = next;
    }
  }
  bench::Timer timer;
  bool all_sat = true;
  for (int p = 0; p < probes; ++p) {
    // Alternate the asserted polarity so each probe re-walks the watcher
    // lists from a different phase.
    std::vector<smt::ExprId> assumptions;
    assumptions.reserve(triggers.size());
    for (std::size_t t = 0; t < triggers.size(); ++t) {
      const bool positive = ((t + static_cast<std::size_t>(p)) % 2) == 0;
      assumptions.push_back(positive ? triggers[t] : f.not_(triggers[t]));
    }
    all_sat &= solver->check_assuming(assumptions) == smt::SatResult::Sat;
  }
  const double seconds = timer.seconds();
  std::printf("  chain(%dx%d, %d probes): %s in %.3fs, %llu propagations\n",
              chains, len, probes, all_sat ? "all sat" : "UNEXPECTED verdict",
              seconds,
              static_cast<unsigned long long>(
                  solver->solve_stats().propagations));
  emit("chain", seconds, solver->solve_stats());
}

}  // namespace

int main() {
  bench::header("propagate", "native CDCL propagation microbenchmarks");
  if (bench::smoke()) {
    run_php(6);
    run_chain(16, 64, 8);
  } else if (bench::full_scale()) {
    run_php(9);
    run_chain(128, 512, 64);
  } else {
    run_php(8);
    run_chain(64, 256, 32);
  }
  return 0;
}
