// E9 — baseline comparison: symbolic ADVOCAT vs explicit-state model
// checking (our stand-in for the UPPAAL runs the paper uses on small
// instances).
//
// The point reproduced: explicit-state exploration is exact but explodes
// with mesh size and queue capacity, while the SMT pipeline's cost grows
// with the *structure* only — which is why the paper uses explicit-state
// checking only to confirm candidate deadlocks on small instances.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "advocat/verifier.hpp"
#include "bench_util.hpp"
#include "coherence/mi_abstract.hpp"
#include "sim/explorer.hpp"
#include "sim/simulator.hpp"
#include "util/stopwatch.hpp"

using namespace advocat;

namespace {

void compare(int k, std::size_t cap, std::size_t state_budget) {
  coh::MiAbstractConfig config;
  config.width = k;
  config.height = k;
  config.queue_capacity = cap;
  coh::MiAbstractSystem sys = coh::build_mi_abstract(config);

  const core::VerifyResult advocat_result = core::verify(sys.net);

  sim::Simulator simulator(sys.net);
  sim::ExploreOptions options;
  options.max_states = state_budget;
  options.stop_at_deadlock = true;
  const sim::ExploreResult mc = sim::explore(simulator, options);

  const char* mc_verdict = mc.deadlock.has_value()
                               ? "deadlock"
                               : (mc.complete ? "free" : "inconclusive");
  std::printf("%dx%-2d cap=%-3zu  advocat: %-8s %7.2fs   explicit: %-12s "
              "%7.2fs  (%zu states)\n",
              k, k, cap,
              bench::verdict_string(advocat_result.report.result),
              advocat_result.total_seconds, mc_verdict, mc.seconds,
              mc.states_visited);
  bench::JsonLine("tab_baseline_mc")
      .field("mesh", k)
      .field("capacity", cap)
      .field("advocat_verdict",
             bench::verdict_string(advocat_result.report.result))
      .field("advocat_seconds", advocat_result.total_seconds)
      .field("explicit_verdict", mc_verdict)
      .field("explicit_seconds", mc.seconds)
      .field("explicit_states", mc.states_visited)
      .print();
}

void BM_AdvocatVerify2x2(benchmark::State& state) {
  coh::MiAbstractConfig config;
  config.queue_capacity = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    coh::MiAbstractSystem sys = coh::build_mi_abstract(config);
    benchmark::DoNotOptimize(core::verify(sys.net));
  }
}
BENCHMARK(BM_AdvocatVerify2x2)->Arg(2)->Arg(3)->Arg(10);

void BM_ExplicitExplore2x2(benchmark::State& state) {
  coh::MiAbstractConfig config;
  config.queue_capacity = static_cast<std::size_t>(state.range(0));
  coh::MiAbstractSystem sys = coh::build_mi_abstract(config);
  sim::Simulator simulator(sys.net);
  for (auto _ : state) {
    sim::ExploreOptions options;
    options.max_states = 200'000;
    benchmark::DoNotOptimize(sim::explore(simulator, options));
  }
}
BENCHMARK(BM_ExplicitExplore2x2)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  bench::header("E9", "ADVOCAT vs explicit-state baseline");
  std::printf("\n");
  compare(2, 2, bench::smoke() ? 50'000 : 500'000);
  if (!bench::smoke()) {
    compare(2, 3, bench::full_scale() ? 5'000'000 : 150'000);
    compare(3, 2, bench::full_scale() ? 5'000'000 : 150'000);
    compare(3, 8, bench::full_scale() ? 5'000'000 : 150'000);
  }
  std::printf("\nexplicit-state cost grows with queue capacity and mesh "
              "size; ADVOCAT's does not (cf. E6).\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
