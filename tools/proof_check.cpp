// Certificate validation — see proof_check.hpp for the contract and
// docs/PROOFS.md for the grammar. Structure:
//
//  1. a watched-literal unit-propagation engine over the ingested clauses
//     (problem `in` lines, `assume` hypotheses, verified derivations),
//     with a permanent trail that only grows and a rollback point for the
//     temporary assumptions of each reverse-unit-propagation check;
//  2. an exact-integer interval tightener (tighten() below) that MUST stay
//     behaviorally identical to the certifier's copy in src/smt/proof.cpp
//     — rows in order, terms in order, Chvátal–Gomory rounding, stop at
//     the first bound crossing — so a proof step can reference derived
//     bounds as `lo<v>` / `hi<v>` without serializing their derivation;
//  3. a recursive-descent verifier for lemma proof bodies: `f` Farkas
//     combinations re-summed in exact rational arithmetic, `s … alt …
//     join` single-variable splits (integer tautologies, so any split is
//     admissible), `dq` disequality closures on fully-pinned forms.
#include "proof_check.hpp"

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/bigint.hpp"
#include "util/rational.hpp"

namespace advocat::proofcheck {
namespace {

using util::BigInt;
using util::Rational;

// ----------------------------------------------------------- arithmetic

// floor(a/b) for b > 0 (BigInt division truncates toward zero).
BigInt floor_div_big(const BigInt& a, const BigInt& b) {
  BigInt q = a / b;
  if (!(a % b).is_zero() && a.is_negative()) q -= BigInt(1);
  return q;
}

struct Ineq {
  std::vector<std::pair<int, std::int64_t>> terms;
  BigInt bound;
};

struct Diseq {
  std::vector<std::pair<int, std::int64_t>> terms;
  std::int64_t bound = 0;
  std::size_t premise = 0;
};

struct VarBound {
  bool has = false;
  BigInt val;
};

struct CertState {
  std::vector<VarBound> lo, hi;
};

constexpr int kTightenPasses = 64;

// Interval tightening to fixpoint (or pass budget) with integer rounding.
// Returns the crossed variable on contradiction, -1 otherwise. Lockstep
// twin of tighten() in src/smt/proof.cpp — do not "improve" one side.
int tighten(const std::vector<Ineq>& rows, CertState& st) {
  for (int pass = 0; pass < kTightenPasses; ++pass) {
    bool changed = false;
    for (const Ineq& r : rows) {
      for (std::size_t ti = 0; ti < r.terms.size(); ++ti) {
        const int v = r.terms[ti].first;
        const std::int64_t c = r.terms[ti].second;
        BigInt rest(0);
        bool open = false;
        for (std::size_t tj = 0; tj < r.terms.size(); ++tj) {
          if (tj == ti) continue;
          const int u = r.terms[tj].first;
          const std::int64_t cu = r.terms[tj].second;
          const VarBound& b = cu > 0 ? st.lo[static_cast<std::size_t>(u)]
                                     : st.hi[static_cast<std::size_t>(u)];
          if (!b.has) {
            open = true;
            break;
          }
          rest += BigInt(cu) * b.val;
        }
        if (open) continue;
        const BigInt avail = r.bound - rest;  // c·v ≤ avail
        if (c > 0) {
          const BigInt nb = floor_div_big(avail, BigInt(c));
          VarBound& hb = st.hi[static_cast<std::size_t>(v)];
          if (!hb.has || nb < hb.val) {
            hb.has = true;
            hb.val = nb;
            changed = true;
          }
        } else {
          const BigInt nb = -floor_div_big(avail, BigInt(-c));
          VarBound& lb = st.lo[static_cast<std::size_t>(v)];
          if (!lb.has || nb > lb.val) {
            lb.has = true;
            lb.val = nb;
            changed = true;
          }
        }
        const VarBound& lb = st.lo[static_cast<std::size_t>(v)];
        const VarBound& hb = st.hi[static_cast<std::size_t>(v)];
        if (lb.has && hb.has && lb.val > hb.val) return v;
      }
    }
    if (!changed) break;
  }
  return -1;
}

// ---------------------------------------------------------------- parsing

bool is_int_token(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = s[0] == '-' ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i])) == 0) return false;
  }
  return true;
}

// ---------------------------------------------------- propagation engine

// Two-watched-literal unit propagation over DIMACS-signed clauses. The
// permanent trail grows as clauses are ingested; rup checks push
// temporary assumptions and roll back to the permanent mark.
class PropEngine {
 public:
  void set_num_vars(std::size_t n) {
    val_.assign(n + 1, 0);
    watches_.assign(2 * (n + 1), {});
  }

  [[nodiscard]] std::size_t num_vars() const {
    return val_.empty() ? 0 : val_.size() - 1;
  }

  [[nodiscard]] bool conflicted() const { return conflict_; }

  [[nodiscard]] int value(int lit) const {
    const int v = lit > 0 ? lit : -lit;
    const int a = val_[static_cast<std::size_t>(v)];
    return lit > 0 ? a : -a;
  }

  /// Ingests a clause as permanently true and propagates its
  /// consequences. A clause already satisfied by the permanent trail is
  /// dropped (the trail only grows, so it can never propagate).
  void add_clause(std::vector<int> lits) {
    if (conflict_) return;
    // Partition: non-false literals first.
    std::size_t nf = 0;
    for (std::size_t i = 0; i < lits.size(); ++i) {
      if (value(lits[i]) == 1) return;  // permanently satisfied
      if (value(lits[i]) == 0) std::swap(lits[nf++], lits[i]);
    }
    if (nf == 0) {
      conflict_ = true;  // empty or all-false: the DB derived ⊥
      return;
    }
    if (nf == 1) {
      enqueue(lits[0]);
      if (!conflict_ && !propagate()) conflict_ = true;
      return;
    }
    const int ci = static_cast<int>(clauses_.size());
    clauses_.push_back(std::move(lits));
    watches_[idx(clauses_.back()[0])].push_back(ci);
    watches_[idx(clauses_.back()[1])].push_back(ci);
  }

  /// Reverse-unit-propagation check: DB ∧ ¬clause propagates to ⊥.
  /// Leaves the permanent state untouched.
  [[nodiscard]] bool rup_holds(const std::vector<int>& lits) {
    if (conflict_) return true;
    const std::size_t mark = trail_.size();
    bool refuted = false;
    for (const int l : lits) {
      if (value(l) == 1) {  // assuming ¬l contradicts the current state
        refuted = true;
        break;
      }
      if (value(l) == 0) {
        assign(-l);
      }
    }
    if (!refuted) refuted = !propagate();
    // Roll back the temporary assumptions and their consequences.
    for (std::size_t t = mark; t < trail_.size(); ++t) {
      val_[static_cast<std::size_t>(std::abs(trail_[t]))] = 0;
    }
    trail_.resize(mark);
    qhead_ = mark;
    return refuted;
  }

  [[nodiscard]] std::size_t clause_count() const { return clauses_.size(); }

 private:
  static std::size_t idx(int lit) {
    const int v = lit > 0 ? lit : -lit;
    return 2 * static_cast<std::size_t>(v) + (lit < 0 ? 1 : 0);
  }

  void assign(int lit) {
    val_[static_cast<std::size_t>(std::abs(lit))] =
        static_cast<signed char>(lit > 0 ? 1 : -1);
    trail_.push_back(lit);
  }

  void enqueue(int lit) {
    if (value(lit) == -1) {
      conflict_ = true;
      return;
    }
    if (value(lit) == 0) assign(lit);
  }

  // Returns false on conflict; the trail then still holds the partial
  // propagation (the caller rolls back or latches the conflict).
  bool propagate() {
    while (qhead_ < trail_.size()) {
      const int fl = -trail_[qhead_++];  // literal that just became false
      std::vector<int>& ws = watches_[idx(fl)];
      std::size_t j = 0;
      for (std::size_t i = 0; i < ws.size(); ++i) {
        const int ci = ws[i];
        std::vector<int>& c = clauses_[static_cast<std::size_t>(ci)];
        if (c[0] == fl) std::swap(c[0], c[1]);
        if (value(c[0]) == 1) {  // satisfied: keep the watch
          ws[j++] = ci;
          continue;
        }
        bool moved = false;
        for (std::size_t k = 2; k < c.size(); ++k) {
          if (value(c[k]) != -1) {
            std::swap(c[1], c[k]);
            watches_[idx(c[1])].push_back(ci);
            moved = true;
            break;
          }
        }
        if (moved) continue;
        ws[j++] = ci;  // clause stays watched here: unit or conflicting
        if (value(c[0]) == -1) {
          for (++i; i < ws.size(); ++i) ws[j++] = ws[i];
          ws.resize(j);
          return false;
        }
        assign(c[0]);
      }
      ws.resize(j);
    }
    return true;
  }

  std::vector<signed char> val_;          // var -> 0 / +1 / -1
  std::vector<std::vector<int>> watches_;  // lit idx -> clause indices
  std::vector<std::vector<int>> clauses_;
  std::vector<int> trail_;
  std::size_t qhead_ = 0;
  bool conflict_ = false;
};

// -------------------------------------------------------------- checker

struct AtomInfo {
  bool present = false;
  bool is_eq = false;
  std::int64_t bound = 0;
  std::vector<std::pair<int, std::int64_t>> terms;
};

class Checker {
 public:
  CheckResult run(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    bool saw_qed = false;
    while (std::getline(in, line)) {
      ++lineno_;
      std::istringstream ls(line);
      std::string head;
      if (!(ls >> head)) continue;  // blank line
      if (saw_qed) return fail("parse-error", "content after qed");
      if (lineno_ == 1) {
        std::string ver;
        if (head != "advocat-proof" || !(ls >> ver) || ver != "1") {
          return fail("bad-header", "expected 'advocat-proof 1'");
        }
        continue;
      }
      if (head == "mode") {
        if (!(ls >> res_.mode)) return fail("bad-header", "missing mode");
        if (res_.mode != "native" && res_.mode != "attested") {
          return fail("bad-header", "unknown mode '" + res_.mode + "'");
        }
        continue;
      }
      if (res_.mode.empty()) return fail("bad-header", "mode line missing");
      if (res_.mode == "attested") {
        // An attestation carries no replayable evidence: only the closing
        // qed is expected.
        if (head == "qed") {
          saw_qed = true;
          continue;
        }
        return fail("parse-error", "unexpected '" + head + "' in attested");
      }
      if (head == "nvars") {
        std::size_t n = 0;
        if (!(ls >> n)) return fail("parse-error", "bad nvars");
        engine_.set_num_vars(n);
        atoms_.assign(n + 1, AtomInfo{});
        continue;
      }
      if (head == "nints") {
        if (!(ls >> nints_)) return fail("parse-error", "bad nints");
        continue;
      }
      if (head == "atom") {
        if (!parse_atom(ls)) return result();
        continue;
      }
      if (head == "in" || head == "assume" || head == "rup" ||
          head == "del") {
        std::vector<int> lits;
        if (!parse_lits(ls, lits)) return result();
        if (head == "del") continue;  // advisory: one worker's copy only
        if (head == "rup") {
          ++res_.steps;
          if (!engine_.rup_holds(lits)) {
            return fail("rup-failed", "line " + std::to_string(lineno_));
          }
        }
        engine_.add_clause(std::move(lits));
        ++res_.clauses;
        continue;
      }
      if (head == "lem") {
        std::vector<int> lits;
        if (!parse_lits(ls, lits)) return result();
        if (!check_lemma(in, lits)) return result();
        engine_.add_clause(std::move(lits));
        ++res_.clauses;
        continue;
      }
      if (head == "qed") {
        ++res_.steps;
        if (!engine_.conflicted()) {
          return fail("qed-failed",
                      "clause set propagates without contradiction");
        }
        saw_qed = true;
        continue;
      }
      return fail("parse-error",
                  "line " + std::to_string(lineno_) + ": '" + head + "'");
    }
    if (!saw_qed) return fail("truncated", "no qed");
    res_.ok = true;
    return result();
  }

 private:
  CheckResult fail(const char* reason, std::string detail) {
    res_.ok = false;
    res_.reason = reason;
    res_.detail = std::move(detail);
    return res_;
  }

  CheckResult result() { return res_; }

  bool parse_lits(std::istringstream& ls, std::vector<int>& lits) {
    std::string tok;
    bool closed = false;
    while (ls >> tok) {
      if (!is_int_token(tok)) {
        fail("parse-error", "line " + std::to_string(lineno_) +
                                ": bad literal '" + tok + "'");
        return false;
      }
      const long long l = std::stoll(tok);
      if (l == 0) {
        closed = true;
        break;
      }
      const long long v = l > 0 ? l : -l;
      if (v > static_cast<long long>(engine_.num_vars())) {
        fail("parse-error", "line " + std::to_string(lineno_) +
                                ": variable out of range");
        return false;
      }
      lits.push_back(static_cast<int>(l));
    }
    if (!closed) {
      fail("parse-error",
           "line " + std::to_string(lineno_) + ": missing 0 terminator");
      return false;
    }
    return true;
  }

  bool parse_atom(std::istringstream& ls) {
    std::size_t bvar = 0;
    std::string kind;
    std::int64_t bound = 0;
    std::size_t k = 0;
    if (!(ls >> bvar >> kind >> bound >> k) || bvar == 0 ||
        bvar > engine_.num_vars() || (kind != "le" && kind != "eq")) {
      fail("parse-error", "line " + std::to_string(lineno_) + ": bad atom");
      return false;
    }
    AtomInfo a;
    a.present = true;
    a.is_eq = kind == "eq";
    a.bound = bound;
    for (std::size_t i = 0; i < k; ++i) {
      int v = 0;
      std::int64_t c = 0;
      if (!(ls >> v >> c) || v < 0 ||
          static_cast<std::size_t>(v) >= nints_) {
        fail("parse-error",
             "line " + std::to_string(lineno_) + ": bad atom term");
        return false;
      }
      a.terms.emplace_back(v, c);
    }
    atoms_[bvar] = std::move(a);
    return true;
  }

  // Premise system of one lemma: negated clause literals then ctx
  // literals, each mapped through the atom table. `refs` names the
  // inequality rows ("p<i>", and "q<i>" for an equality's ≥-half).
  bool build_premises(const std::vector<int>& lits,
                      const std::vector<int>& ctx, std::vector<Ineq>& rows,
                      std::unordered_map<std::string, std::size_t>& refs,
                      std::vector<Diseq>& diseqs) {
    const std::size_t n = lits.size();
    for (std::size_t i = 0; i < n + ctx.size(); ++i) {
      const int pl = i < n ? -lits[i] : ctx[i - n];
      const AtomInfo& a = atoms_[static_cast<std::size_t>(std::abs(pl))];
      if (!a.present) {
        fail("lemma-bad-ref", "premise " + std::to_string(i) +
                                  " is not a theory atom");
        return false;
      }
      const std::string idx = std::to_string(i);
      if (pl > 0) {
        Ineq le;
        le.terms = a.terms;
        le.bound = BigInt(a.bound);
        refs.emplace("p" + idx, rows.size());
        rows.push_back(std::move(le));
        if (a.is_eq) {
          Ineq ge;
          for (const auto& [u, c] : a.terms) ge.terms.emplace_back(u, -c);
          ge.bound = BigInt(-a.bound);
          refs.emplace("q" + idx, rows.size());
          rows.push_back(std::move(ge));
        }
      } else if (!a.is_eq) {
        Ineq gt;
        for (const auto& [u, c] : a.terms) gt.terms.emplace_back(u, -c);
        gt.bound = BigInt(-a.bound) - BigInt(1);
        refs.emplace("p" + idx, rows.size());
        rows.push_back(std::move(gt));
      } else {
        Diseq d;
        d.terms = a.terms;
        d.bound = a.bound;
        d.premise = i;
        diseqs.push_back(std::move(d));
      }
    }
    return true;
  }

  // Resolves a Farkas reference against the premise rows or the current
  // derived bounds. Returns false (with reason set) on a dangling ref.
  bool resolve_ref(const std::string& ref, const std::vector<Ineq>& rows,
                   const std::unordered_map<std::string, std::size_t>& refs,
                   const CertState& st, Ineq& out) {
    const auto it = refs.find(ref);
    if (it != refs.end()) {
      out = rows[it->second];
      return true;
    }
    if (ref.size() > 2 && (ref.rfind("lo", 0) == 0 || ref.rfind("hi", 0) == 0)
        && is_int_token(ref.substr(2))) {
      const long long v = std::stoll(ref.substr(2));
      if (v >= 0 && static_cast<std::size_t>(v) < nints_) {
        const bool want_lo = ref[0] == 'l';
        const VarBound& b = want_lo ? st.lo[static_cast<std::size_t>(v)]
                                    : st.hi[static_cast<std::size_t>(v)];
        if (b.has) {
          // lo: v ≥ L  ⇔  −v ≤ −L ;  hi: v ≤ H.
          out.terms = {{static_cast<int>(v), want_lo ? -1 : 1}};
          out.bound = want_lo ? -b.val : b.val;
          return true;
        }
      }
    }
    fail("lemma-bad-ref", "line " + std::to_string(lineno_) + ": '" + ref +
                              "' names no premise or derived bound");
    return false;
  }

  // Verifies `f n (ref num den)*`: positive multipliers, every integer
  // column cancels, combined bound strictly negative.
  bool check_farkas(std::istringstream& ls, const std::vector<Ineq>& rows,
                    const std::unordered_map<std::string, std::size_t>& refs,
                    const CertState& st) {
    std::size_t n = 0;
    if (!(ls >> n) || n == 0) {
      fail("lemma-invalid-farkas",
           "line " + std::to_string(lineno_) + ": empty combination");
      return false;
    }
    std::map<int, Rational> cols;
    Rational total(0);
    for (std::size_t i = 0; i < n; ++i) {
      std::string ref, num, den;
      if (!(ls >> ref >> num >> den) || !is_int_token(num) ||
          !is_int_token(den)) {
        fail("parse-error",
             "line " + std::to_string(lineno_) + ": bad farkas term");
        return false;
      }
      const BigInt bn = BigInt::from_string(num);
      const BigInt bd = BigInt::from_string(den);
      if (bn.is_zero() || bn.is_negative() || bd.is_zero() ||
          bd.is_negative()) {
        fail("lemma-invalid-farkas",
             "line " + std::to_string(lineno_) + ": non-positive multiplier");
        return false;
      }
      const Rational mult(bn, bd);
      Ineq row;
      if (!resolve_ref(ref, rows, refs, st, row)) return false;
      for (const auto& [v, c] : row.terms) {
        cols[v] += mult * Rational(BigInt(c));
      }
      total += mult * Rational(row.bound);
    }
    for (const auto& [v, sum] : cols) {
      if (!sum.is_zero()) {
        fail("lemma-invalid-farkas",
             "line " + std::to_string(lineno_) + ": column " +
                 std::to_string(v) + " does not cancel");
        return false;
      }
    }
    if (!total.is_negative()) {
      fail("lemma-invalid-farkas",
           "line " + std::to_string(lineno_) + ": combined bound 0 ≤ " +
               total.num().to_string() + "/" + total.den().to_string());
      return false;
    }
    ++res_.steps;
    return true;
  }

  bool check_diseq(std::istringstream& ls, const std::vector<Diseq>& diseqs,
                   const CertState& st) {
    std::size_t i = 0;
    if (!(ls >> i)) {
      fail("parse-error", "line " + std::to_string(lineno_) + ": bad dq");
      return false;
    }
    const Diseq* d = nullptr;
    for (const Diseq& cand : diseqs) {
      if (cand.premise == i) {
        d = &cand;
        break;
      }
    }
    if (d == nullptr) {
      fail("lemma-bad-ref", "line " + std::to_string(lineno_) +
                                ": premise " + std::to_string(i) +
                                " is not a disequality");
      return false;
    }
    BigInt sum(0);
    for (const auto& [v, c] : d->terms) {
      const VarBound& lb = st.lo[static_cast<std::size_t>(v)];
      const VarBound& hb = st.hi[static_cast<std::size_t>(v)];
      if (!lb.has || !hb.has || lb.val != hb.val) {
        fail("lemma-diseq-unforced",
             "line " + std::to_string(lineno_) + ": variable " +
                 std::to_string(v) + " not pinned");
        return false;
      }
      sum += BigInt(c) * lb.val;
    }
    if (sum != BigInt(d->bound)) {
      fail("lemma-diseq-unforced",
           "line " + std::to_string(lineno_) +
               ": pinned value misses the excluded bound");
      return false;
    }
    ++res_.steps;
    return true;
  }

  // One proof branch: tighten (lockstep with the certifier), then a
  // closing step or a split into two sub-branches.
  bool check_branch(const std::vector<std::string>& body, std::size_t& pos,
                    const std::vector<Ineq>& rows,
                    const std::unordered_map<std::string, std::size_t>& refs,
                    const std::vector<Diseq>& diseqs, CertState st,
                    int depth) {
    if (depth > 64) {
      fail("parse-error", "proof nesting too deep");
      return false;
    }
    tighten(rows, st);
    if (pos >= body.size()) {
      fail("lemma-open-branch", "proof body ends inside a branch");
      return false;
    }
    ++lineno_;
    std::istringstream ls(body[pos++]);
    std::string head;
    ls >> head;
    if (head == "f") return check_farkas(ls, rows, refs, st);
    if (head == "dq") return check_diseq(ls, diseqs, st);
    if (head == "s") {
      long long v = 0;
      std::string ktok;
      if (!(ls >> v >> ktok) || v < 0 ||
          static_cast<std::size_t>(v) >= nints_ || !is_int_token(ktok)) {
        fail("parse-error", "line " + std::to_string(lineno_) + ": bad split");
        return false;
      }
      const BigInt cut = BigInt::from_string(ktok);
      // v ≤ cut  ∨  v ≥ cut+1 is an integer tautology: any split closes
      // the lemma iff both branches close.
      CertState left = st;
      VarBound& lhi = left.hi[static_cast<std::size_t>(v)];
      lhi.has = true;
      lhi.val = cut;
      if (!check_branch(body, pos, rows, refs, diseqs, std::move(left),
                        depth + 1)) {
        return false;
      }
      if (pos >= body.size() || body[pos] != "alt") {
        fail("lemma-open-branch", "missing alt after left branch");
        return false;
      }
      ++pos;
      ++lineno_;
      CertState right = std::move(st);
      VarBound& rlo = right.lo[static_cast<std::size_t>(v)];
      rlo.has = true;
      rlo.val = cut + BigInt(1);
      if (!check_branch(body, pos, rows, refs, diseqs, std::move(right),
                        depth + 1)) {
        return false;
      }
      if (pos >= body.size() || body[pos] != "join") {
        fail("lemma-open-branch", "missing join after right branch");
        return false;
      }
      ++pos;
      ++lineno_;
      ++res_.steps;
      return true;
    }
    fail("parse-error",
         "line " + std::to_string(lineno_) + ": bad proof step '" + head +
             "'");
    return false;
  }

  // Full lemma check: optional ctx line, proof body through `end`, then
  // ctx re-derivation and the branch-and-cut verification (or, for an
  // `unproven` marker, rejection unless plain reverse unit propagation
  // already entails the clause).
  bool check_lemma(std::istringstream& in, const std::vector<int>& lits) {
    std::vector<int> ctx;
    std::vector<std::string> body;
    std::string line;
    bool closed = false;
    bool first = true;
    while (std::getline(in, line)) {
      ++lineno_;
      std::istringstream ls(line);
      std::string head;
      if (!(ls >> head)) continue;
      if (first && head == "ctx") {
        first = false;
        if (!parse_lits(ls, ctx)) return false;
        continue;
      }
      first = false;
      if (head == "end") {
        closed = true;
        break;
      }
      body.push_back(line);
    }
    if (!closed) {
      fail("truncated", "lemma body missing 'end'");
      return false;
    }
    lineno_ -= body.size() + 1;  // re-counted step by step below

    if (body.size() == 1 && body[0] == "unproven") {
      lineno_ += 2;
      ++res_.steps;
      if (engine_.rup_holds(lits)) return true;  // boolean rescue
      fail("lemma-unproven", "line " + std::to_string(lineno_ - 1));
      return false;
    }

    // Every ctx literal must itself be a consequence of the clause set so
    // far — the solver had it at decision level 0. A conflicted DB (e.g.
    // an assumption contradicting a unit problem clause: the trivially-
    // unsat session shape) entails every literal, so the check is
    // vacuous there — the engine stopped assigning values at ⊥.
    if (!engine_.conflicted()) {
      for (const int l : ctx) {
        if (engine_.value(l) != 1) {
          fail("ctx-underived", "literal " + std::to_string(l) +
                                    " does not follow from the clause set");
          return false;
        }
      }
    }
    std::vector<Ineq> rows;
    std::unordered_map<std::string, std::size_t> refs;
    std::vector<Diseq> diseqs;
    if (!build_premises(lits, ctx, rows, refs, diseqs)) return false;
    CertState st;
    st.lo.resize(nints_);
    st.hi.resize(nints_);
    std::size_t pos = 0;
    if (!check_branch(body, pos, rows, refs, diseqs, std::move(st), 0)) {
      return false;
    }
    if (pos != body.size()) {
      fail("parse-error", "trailing proof steps after the branch closed");
      return false;
    }
    ++lineno_;  // the 'end' line
    return true;
  }

  PropEngine engine_;
  std::vector<AtomInfo> atoms_{AtomInfo{}};
  std::size_t nints_ = 0;
  std::size_t lineno_ = 0;
  CheckResult res_;
};

}  // namespace

CheckResult check_proof_text(const std::string& text) {
  Checker ck;
  return ck.run(text);
}

CheckResult check_proof_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    CheckResult r;
    r.reason = "parse-error";
    r.detail = "cannot open " + path;
    return r;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return check_proof_text(buf.str());
}

}  // namespace advocat::proofcheck
