// advocat-check — standalone certificate validator (docs/PROOFS.md).
//
//   advocat-check [-q] <proof-file>...
//
// Validates each certificate independently and prints one line per file:
//   ACCEPT <file> mode=<native|attested> clauses=<n> steps=<n>
//   REJECT <file> reason=<reason> (<detail>)
// Exit status 0 iff every file was accepted. `-q` suppresses ACCEPT lines
// (CI runs it over hundreds of refutations).
//
// This binary links only the proof-checker library and the exact-number
// primitives — no solver, search, or encoder code — so an acceptance is
// evidence independent of the toolchain that produced the certificate.
#include <cstdio>
#include <cstring>
#include <string>

#include "proof_check.hpp"

int main(int argc, char** argv) {
  bool quiet = false;
  int first = 1;
  if (first < argc && std::strcmp(argv[first], "-q") == 0) {
    quiet = true;
    ++first;
  }
  if (first >= argc) {
    std::fprintf(stderr, "usage: advocat-check [-q] <proof-file>...\n");
    return 2;
  }
  int failures = 0;
  for (int i = first; i < argc; ++i) {
    const advocat::proofcheck::CheckResult r =
        advocat::proofcheck::check_proof_file(argv[i]);
    if (r.ok) {
      if (!quiet) {
        std::printf("ACCEPT %s mode=%s clauses=%zu steps=%zu\n", argv[i],
                    r.mode.c_str(), r.clauses, r.steps);
      }
    } else {
      ++failures;
      std::printf("REJECT %s reason=%s (%s)\n", argv[i], r.reason.c_str(),
                  r.detail.c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}
