// Standalone validator for advocat Unsat certificates (docs/PROOFS.md).
//
// Deliberately independent of the solver: the only shared code is the
// exact arbitrary-precision arithmetic (util/bigint.hpp, util/rational.hpp)
// — literal/rational primitives with no solver logic. Everything else
// (parsing, unit propagation, interval tightening, Farkas validation) is
// re-implemented here, so a bug in the solver's search or certificate
// serializer cannot silently vouch for itself.
//
// A certificate is accepted only when:
//  - every `rup` clause is derivable by reverse unit propagation from the
//    problem clauses, the `assume` hypotheses, and earlier derived clauses;
//  - every `lem` clause carries an inline branch-and-cut proof that checks
//    under exact rational re-substitution (Farkas combinations cancel and
//    cross zero; splits are integer tautologies; disequality steps are
//    forced), with every `ctx` literal independently re-derived; and
//  - `qed` closes the file and the accumulated clause set propagates to a
//    contradiction.
// Rejections name the first failing ingredient (see CheckResult::reason).
#pragma once

#include <string>

namespace advocat::proofcheck {

struct CheckResult {
  bool ok = false;
  /// Rejection reason, stable across releases (mutation tests key on it):
  /// "parse-error", "bad-header", "rup-failed", "lemma-unproven",
  /// "lemma-invalid-farkas", "lemma-open-branch", "lemma-bad-ref",
  /// "lemma-diseq-unforced", "ctx-underived", "truncated", "qed-failed".
  /// Empty when ok.
  std::string reason;
  /// Free-text location/context for the failure (line number, step).
  std::string detail;
  /// "native" for replayable certificates, "attested" for backend-attested
  /// verdicts (accepted, but carrying no independent evidence).
  std::string mode;
  /// Statistics for reporting: clauses ingested / steps verified.
  std::size_t clauses = 0;
  std::size_t steps = 0;
};

/// Validates a full certificate text.
[[nodiscard]] CheckResult check_proof_text(const std::string& text);

/// Reads and validates a certificate file.
[[nodiscard]] CheckResult check_proof_file(const std::string& path);

}  // namespace advocat::proofcheck
